"""Property tests for the vectorized perf kernels and the parallel runner.

The net-geometry index (`repro.netlist.index`) and the array-built
quadratic model (`repro.place.global_place._build_connectivity`) must
match their retained scalar references *bit for bit* on randomized
netlists — floating-point accumulation order is part of the QoR
baseline contract.  The randomized designs deliberately include the
degenerate shapes the kernels special-case: 1-term nets, nets above
``ignore_degree``, nets with no movable terminals, placed (fixed-pin)
and unplaced (offset-term) macros, and port terminals.

Also covered here: the scipy ``cg`` tol/rtol compat shim, the
``profile_call`` helper, the ``index_build`` span + ``hpwl_evals``
counter, and byte-identical QoR between ``bench run --jobs 1`` and
``--jobs 2``.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.bench import (
    SCHEDULE_FILENAME,
    Scenario,
    artifact_filename,
    load_artifact,
    qor_json,
    register_scenario,
    run_benchmarks,
    scenarios_overlapped,
    unregister_scenario,
)
from repro.cells.library import default_library
from repro.cells.macro import Macro, MacroPin
from repro.cells.stdcell import PinDirection
from repro.floorplan.floorplan import Floorplan
from repro.geom import Point, Rect
from repro.netlist.core import Netlist, PortConstraint
from repro.obs import profile_call, recording
from repro.place.global_place import (
    _CG_TOL_KW,
    GlobalPlacerOptions,
    Placement,
    _build_connectivity,
    _build_connectivity_reference,
    _cg,
)

#: Input pins of the library cells used by the random netlists (only
#: inputs: every net may have at most one driver, and these tests do
#: not need drivers at all).
INPUT_PINS = {
    "DFF_X1": ("D", "CK"),
    "DFF_X2": ("D", "CK"),
    "INV_X2": ("A",),
    "NAND2_X1": ("A", "B"),
}


def _make_macro(name: str) -> Macro:
    pins = [MacroPin("CLK", PinDirection.INPUT, Point(2.0, 0.0), "M4", 2.0, True)]
    for i in range(6):
        pins.append(
            MacroPin(
                f"DIN[{i}]", PinDirection.INPUT, Point(4.0 + i, 0.0), "M4", 1.0
            )
        )
    return Macro(
        name=name,
        width=30.0,
        height=12.0,
        pins=tuple(pins),
        obstructions=(),
        setup_time=100.0,
        access_delay=400.0,
        drive_resistance=1500.0,
        energy_per_access=300.0,
        leakage=1.0,
        is_memory=True,
    )


def build_random_design(seed: int, num_cells: int = 90):
    """A randomized design exercising every kernel code path.

    Net degrees span 1-term, clique-sized, star-sized, and one net above
    the default ``ignore_degree``; terminals mix movable cells, a placed
    macro, an *unplaced* (movable) macro, and ports.
    """
    rng = np.random.default_rng(seed)
    library = default_library()
    netlist = Netlist(f"rand{seed}")
    masters = sorted(INPUT_PINS)
    cells = [
        netlist.add_instance(
            f"mod{i % 3}/c{i}",
            library.cell(masters[int(rng.integers(len(masters)))]),
        )
        for i in range(num_cells)
    ]
    slots = [
        (inst, pin) for inst in cells for pin in INPUT_PINS[inst.master.name]
    ]
    slots = [slots[i] for i in rng.permutation(len(slots))]

    outline = Rect(0.0, 0.0, 200.0, 150.0)
    fp = Floorplan(f"fp{seed}", outline, utilization=0.8)
    placed_mac = netlist.add_instance("mac_fixed", _make_macro("MACF"))
    placed_mac.fixed = True
    fp.macro_placements["mac_fixed"] = Rect(10.0, 120.0, 40.0, 132.0)
    # Unplaced and not fixed: a movable macro whose pins become offset
    # terms relative to the instance center.
    floating_mac = netlist.add_instance("mac_float", _make_macro("MACM"))

    ports = [
        netlist.add_port(
            f"p{k}",
            PinDirection.INPUT,
            PortConstraint(edge="W", position=(k + 1) / 8.0),
        )
        for k in range(6)
    ]

    # Clock net: port driver + both macro CLK pins (exercises the
    # include_clock switch and the clock skip in the model builder).
    clk = netlist.add_net("clk")
    clk.is_clock = True
    netlist.connect_port(clk, ports[0])
    netlist.connect(clk, placed_mac, "CLK")
    netlist.connect(clk, floating_mac, "CLK")

    # Fixed-terminal-only net: no movers (placed macro pin + port).
    fixed_only = netlist.add_net("fixed_only")
    netlist.connect_port(fixed_only, ports[1])
    netlist.connect(fixed_only, placed_mac, "DIN[0]")

    si = 0

    def take(net, k):
        nonlocal si
        for _ in range(k):
            inst, pin = slots[si]
            si += 1
            netlist.connect(net, inst, pin)

    # 1-term, clique-sized, boundary, star-sized, and >ignore_degree nets.
    for d_i, deg in enumerate((1, 2, 3, 8, 9, 17, 70)):
        take(netlist.add_net(f"n{d_i}"), deg)
    # Mixed nets: movers + fixed macro pins / floating macro pins / ports.
    mixed_a = netlist.add_net("mixed_a")
    netlist.connect(mixed_a, placed_mac, "DIN[1]")
    netlist.connect(mixed_a, floating_mac, "DIN[0]")
    take(mixed_a, 3)
    mixed_b = netlist.add_net("mixed_b")
    netlist.connect_port(mixed_b, ports[2])
    netlist.connect(mixed_b, placed_mac, "DIN[2]")
    take(mixed_b, 10)

    port_locations = {
        p.name: Point(
            float(rng.uniform(outline.xlo, outline.xhi)),
            float(rng.uniform(outline.ylo, outline.yhi)),
        )
        for p in netlist.ports
    }
    placement = Placement(netlist, fp, port_locations)
    m = placement.movable
    placement.x[m] = rng.uniform(outline.xlo, outline.xhi, int(m.sum()))
    placement.y[m] = rng.uniform(outline.ylo, outline.yhi, int(m.sum()))
    return netlist, placement


SEEDS = (0, 1, 2)


class TestVectorizedHpwl:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_matches_scalar_reference_exactly(self, seed):
        _netlist, placement = build_random_design(seed)
        assert placement.total_hpwl() == placement.total_hpwl_reference()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_include_clock_matches_exactly(self, seed):
        _netlist, placement = build_random_design(seed)
        with_clk = placement.total_hpwl(include_clock=True)
        assert with_clk == placement.total_hpwl_reference(include_clock=True)
        assert with_clk >= placement.total_hpwl()

    def test_net_points_match_term_positions(self):
        netlist, placement = build_random_design(3)
        geo = placement.geometry()
        net_ids = [net.id for net in netlist.nets]
        batched = geo.net_points(placement.x, placement.y, net_ids)
        for net, points in zip(netlist.nets, batched):
            scalar = placement.net_points(net)
            assert len(points) == len(scalar)
            for p, q in zip(points, scalar):
                assert p.x == q.x and p.y == q.y


class TestVectorizedConnectivity:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize(
        "options",
        [
            GlobalPlacerOptions(),
            GlobalPlacerOptions(clique_max_degree=4, ignore_degree=16),
        ],
        ids=["default", "tight"],
    )
    def test_matches_scalar_reference_exactly(self, seed, options):
        netlist, placement = build_random_design(seed)
        movable_ids = [
            inst.id
            for inst in netlist.instances
            if placement.movable[inst.id]
        ]
        movable_index = {iid: k for k, iid in enumerate(movable_ids)}
        cv, sv = _build_connectivity(netlist, placement, movable_index, options)
        cr, sr = _build_connectivity_reference(
            netlist, placement, movable_index, options
        )
        assert np.array_equal(np.asarray(cv.rows), np.asarray(cr.rows))
        assert np.array_equal(np.asarray(cv.cols), np.asarray(cr.cols))
        assert np.array_equal(np.asarray(cv.vals), np.asarray(cr.vals))
        assert np.array_equal(cv.diag, cr.diag)
        assert np.array_equal(cv.bx, cr.bx)
        assert np.array_equal(cv.by, cr.by)
        assert len(sv) == len(sr)
        for (mv, wv), (mr, wr) in zip(sv, sr):
            assert np.array_equal(mv, mr)
            assert wv == wr
        extra = np.random.default_rng(seed).uniform(
            0.1, 1.0, len(movable_ids)
        )
        diff = cv.matrix(extra) - cr.matrix(extra)
        assert diff.nnz == 0

    def test_offdiag_cached_across_matrix_calls(self):
        netlist, placement = build_random_design(0)
        movable_ids = [
            inst.id
            for inst in netlist.instances
            if placement.movable[inst.id]
        ]
        movable_index = {iid: k for k, iid in enumerate(movable_ids)}
        conn, _stars = _build_connectivity(
            netlist, placement, movable_index, GlobalPlacerOptions()
        )
        extra = np.ones(len(movable_ids))
        conn.matrix(extra)
        cached = conn._offdiag
        assert cached is not None
        conn.matrix(2.0 * extra)
        assert conn._offdiag is cached


class TestCgShim:
    def test_resolved_keyword_is_known_spelling(self):
        assert _CG_TOL_KW in ("rtol", "tol")

    def test_cg_solves_spd_system(self):
        mat = sp.csr_matrix(np.array([[4.0, 1.0], [1.0, 3.0]]))
        rhs = np.array([1.0, 2.0])
        x, info = _cg(
            mat, rhs, x0=np.zeros(2), tol=1e-12, maxiter=200, callback=None
        )
        assert info == 0
        assert np.allclose(mat @ x, rhs, atol=1e-8)


class TestObservability:
    def test_index_build_span_and_hpwl_counter(self):
        _netlist, placement = build_random_design(0)
        with recording() as rec:
            placement.total_hpwl()
            placement.total_hpwl()
        assert "index_build" in rec.span_names()
        assert rec.metrics.counters["hpwl_evals"] == 2.0

    def test_index_shared_by_copies(self):
        _netlist, placement = build_random_design(1)
        geo = placement.geometry()
        clone = placement.copy()
        assert clone.geometry() is geo


class TestProfileCall:
    def test_returns_result_and_report(self):
        def work(a, b=0):
            return sum(range(a)) + b

        result, report = profile_call(work, 100, b=5)
        assert result == sum(range(100)) + 5
        assert "cumulative" in report
        assert "function calls" in report


#: Two tiny cross-flow scenarios for the parallel-runner QoR test.
TINY_SCENARIOS = [
    Scenario(
        name="macro3d-smallcache-tinytest",
        flow="macro3d",
        config="smallcache",
        size="tinytest",
        scale=0.01,
        sizing_iterations=1,
    ),
    Scenario(
        name="2d-smallcache-tinytest",
        flow="2d",
        config="smallcache",
        size="tinytest",
        scale=0.01,
        sizing_iterations=1,
    ),
]


class TestParallelBench:
    def test_jobs2_byte_identical_to_serial(self, tmp_path):
        for scenario in TINY_SCENARIOS:
            register_scenario(scenario)
        try:
            serial_dir = tmp_path / "serial"
            parallel_dir = tmp_path / "parallel"
            _res1, sched1, fails1 = run_benchmarks(
                TINY_SCENARIOS, str(serial_dir), svg=False, jobs=1
            )
            _res2, sched2, fails2 = run_benchmarks(
                TINY_SCENARIOS, str(parallel_dir), svg=False, jobs=2
            )
            assert not fails1 and not fails2
            for scenario in TINY_SCENARIOS:
                name = artifact_filename(scenario.name)
                a1 = load_artifact(str(serial_dir / name))
                a2 = load_artifact(str(parallel_dir / name))
                assert qor_json(a1) == qor_json(a2)
            assert (serial_dir / SCHEDULE_FILENAME).exists()
            assert (parallel_dir / SCHEDULE_FILENAME).exists()
            assert sched1["jobs"] == 1 and sched2["jobs"] == 2
            # Serial intervals are disjoint by construction; the pool
            # must actually overlap the two scenarios.
            assert not scenarios_overlapped(sched1)
            assert scenarios_overlapped(sched2)
        finally:
            for scenario in TINY_SCENARIOS:
                unregister_scenario(scenario.name)
