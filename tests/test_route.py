"""Routing: Steiner decomposition, grid, global router, layer assignment."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.floorplan.macro_placer import place_macros_2d
from repro.floorplan.pins import place_ports
from repro.geom import Point, Rect
from repro.place.global_place import global_place
from repro.place.legalize import legalize
from repro.route.global_route import GlobalRouter, RouterOptions
from repro.route.grid import RoutingGrid, RoutingGridOptions
from repro.route.layer_assign import LayerAssigner
from repro.route.steiner import decompose_net, manhattan, mst_edges, tree_length
from repro.tech.beol import merge_beol
from repro.tech.presets import hk28, hk28_stack

points_strategy = st.lists(
    st.builds(Point, st.floats(0, 100), st.floats(0, 100)),
    min_size=2, max_size=12,
)


class TestSteiner:
    def test_two_points(self):
        edges = mst_edges([Point(0, 0), Point(3, 4)])
        assert edges == [(0, 1)]

    def test_tree_shape(self):
        points = [Point(0, 0), Point(10, 0), Point(0, 10), Point(10, 10)]
        edges = mst_edges(points)
        assert len(edges) == 3

    @given(points_strategy)
    @settings(max_examples=40, deadline=None)
    def test_mst_is_spanning_tree(self, points):
        edges = decompose_net(points, driver_index=0)
        assert len(edges) == len(points) - 1
        reached = {0}
        for parent, child in edges:
            assert parent in reached  # rooted at the driver
            reached.add(child)
        assert reached == set(range(len(points)))

    @given(points_strategy)
    @settings(max_examples=40, deadline=None)
    def test_mst_no_longer_than_star(self, points):
        edges = decompose_net(points, driver_index=0)
        mst_len = tree_length(points, edges)
        star_len = sum(manhattan(points[0], p) for p in points[1:])
        assert mst_len <= star_len + 1e-6


@pytest.fixture(scope="module")
def routed_tile(tiny_tile, tech):
    fp = place_macros_2d(tiny_tile)
    ports = place_ports(tiny_tile.netlist, fp.outline)
    placement = legalize(
        global_place(tiny_tile.netlist, fp, ports), tech.row_height
    ).placement
    grid = RoutingGrid(tech.stack, fp.outline)
    for inst in tiny_tile.netlist.macros():
        rect = fp.macro_placements[inst.name]
        for obs in inst.master.obstructions:
            grid.block_layer(obs.layer, obs.rect.translated(rect.xlo, rect.ylo))
        grid.block_substrate(rect)
    router = GlobalRouter(tiny_tile.netlist, placement, grid)
    routed = router.run()
    return fp, placement, grid, router, routed


class TestGrid:
    def test_capacity_positive_everywhere_initially(self, tech):
        grid = RoutingGrid(tech.stack, Rect(0, 0, 500, 500))
        assert (grid.cap_h > 0).all() and (grid.cap_v > 0).all()

    def test_block_layer_removes_capacity(self, tech):
        grid = RoutingGrid(tech.stack, Rect(0, 0, 500, 500))
        m3 = grid.stack.routing_index("M3")
        before = grid.layer_capacity[m3].sum()
        grid.block_layer("M3", Rect(0, 0, 250, 500))
        after = grid.layer_capacity[m3].sum()
        assert after < 0.6 * before

    def test_block_unknown_layer_ignored(self, tech):
        grid = RoutingGrid(tech.stack, Rect(0, 0, 500, 500))
        grid.block_layer("M3_MD", Rect(0, 0, 100, 100))  # not in 2D stack

    def test_block_fraction_clamped(self, tech):
        grid = RoutingGrid(tech.stack, Rect(0, 0, 500, 500))
        m3 = grid.stack.routing_index("M3")
        # fraction > 1 behaves exactly like a full blockage — capacity
        # hits zero, never negative.
        grid.block_layer("M3", Rect(0, 0, 500, 500), fraction=2.5)
        assert (grid.layer_capacity[m3] == 0).all()
        assert (grid.layer_capacity >= 0).all()
        # fraction < 0 clamps to zero: a no-op, not a capacity increase.
        other = RoutingGrid(tech.stack, Rect(0, 0, 500, 500))
        before = other.layer_capacity[m3].copy()
        other.block_layer("M3", Rect(0, 0, 500, 500), fraction=-3.0)
        assert (other.layer_capacity[m3] == before).all()
        other.block_substrate(Rect(0, 0, 500, 500), fraction=-1.0)
        assert (other.substrate_coverage == 0).all()

    def test_block_outside_outline_rejected(self, tech):
        grid = RoutingGrid(tech.stack, Rect(0, 0, 500, 500))
        with pytest.raises(ValueError, match="does not intersect"):
            grid.block_layer("M3", Rect(600, 600, 700, 700))
        with pytest.raises(ValueError, match="does not intersect"):
            grid.block_substrate(Rect(-50.0, 0.0, -10.0, 100.0))
        # Touching the outline edge with zero overlap is still outside:
        # gcell_of would clamp it onto the border cells.
        with pytest.raises(ValueError, match="does not intersect"):
            grid.block_layer("M3", Rect(500, 0, 600, 100))

    def test_pdn_derate_applied(self, tech):
        grid = RoutingGrid(tech.stack, Rect(0, 0, 500, 500))
        m6 = grid.stack.routing_index("M6")
        m5 = grid.stack.routing_index("M5")
        expected_ratio = (
            (grid.gcell / 0.4 * 0.5) / (grid.gcell / 0.2 * 0.75)
        )
        assert grid.layer_capacity[m6, 0, 0] / grid.layer_capacity[
            m5, 0, 0
        ] == pytest.approx(expected_ratio, rel=1e-6)

    def test_f2f_supply(self, tech):
        merged = merge_beol(tech.stack, hk28_stack(4), tech.f2f)
        grid = RoutingGrid(
            merged.stack, Rect(0, 0, 500, 500), merged=merged, f2f=tech.f2f
        )
        assert grid.has_f2f
        assert grid.f2f_boundary == 5
        assert grid.crosses_f2f(5, 6)
        assert not grid.crosses_f2f(4, 5)
        assert grid.f2f_capacity[0, 0] > 0

    def test_merged_grid_requires_spec(self, tech):
        merged = merge_beol(tech.stack, hk28_stack(4), tech.f2f)
        with pytest.raises(ValueError):
            RoutingGrid(merged.stack, Rect(0, 0, 100, 100), merged=merged)

    def test_substrate_coverage(self, tech):
        grid = RoutingGrid(tech.stack, Rect(0, 0, 500, 500))
        grid.block_substrate(Rect(0, 0, 250, 500))
        path = [(0, 0), (1, 0)]
        assert grid.path_blocked_fraction(path) > 0.9
        far = [(grid.nx - 1, 0), (grid.nx - 1, 1)]
        assert grid.path_blocked_fraction(far) == pytest.approx(0.0)


class TestRouter:
    def test_all_signal_nets_routed(self, tiny_tile, routed_tile):
        _fp, _pl, _grid, _router, routed = routed_tile
        expected = sum(
            1 for net in tiny_tile.netlist.nets
            if not net.is_clock and net.degree >= 2
        )
        assert len(routed) == expected

    def test_paths_are_connected(self, routed_tile):
        *_stuff, routed = routed_tile
        for rn in list(routed.values())[::13]:
            for edge in rn.edges:
                for (ax, ay), (bx, by) in zip(edge.path, edge.path[1:]):
                    assert abs(ax - bx) + abs(ay - by) == 1

    def test_routed_length_at_least_manhattan(self, routed_tile):
        *_stuff, routed = routed_tile
        for rn in list(routed.values())[::13]:
            for edge in rn.edges:
                direct = manhattan(
                    rn.points[edge.source_index], rn.points[edge.target_index]
                )
                assert edge.length >= direct * 0.999

    def test_detour_factor_reasonable(self, routed_tile):
        _fp, _pl, _grid, router, _routed = routed_tile
        assert 1.0 <= router.detour_factor() < 1.5

    def test_usage_consistent_with_paths(self, routed_tile):
        _fp, _pl, grid, _router, routed = routed_tile
        use_h = np.zeros_like(grid.use_h)
        use_v = np.zeros_like(grid.use_v)
        for rn in routed.values():
            for edge in rn.edges:
                for (ax, ay), (bx, by) in zip(edge.path, edge.path[1:]):
                    if ax != bx:
                        use_h[min(ax, bx), ay] += 1
                    else:
                        use_v[ax, min(ay, by)] += 1
        assert np.allclose(use_h, grid.use_h)
        assert np.allclose(use_v, grid.use_v)


class TestLayerAssign:
    def test_assignment_totals(self, routed_tile):
        _fp, _pl, grid, _router, routed = routed_tile
        assignment = LayerAssigner(grid).run(routed)
        assert assignment.total_vias > 0
        assert assignment.total_f2f == 0  # no F2F layer in a 2D stack
        total_wl = sum(assignment.wirelength_by_layer.values())
        routed_wl = sum(r.wirelength for r in routed.values())
        assert total_wl == pytest.approx(routed_wl, rel=0.2)

    def test_rc_positive(self, routed_tile):
        _fp, _pl, grid, _router, routed = routed_tile
        assignment = LayerAssigner(grid).run(routed)
        for edges in list(assignment.edges.values())[::17]:
            for e in edges:
                assert e.resistance > 0
                assert e.capacitance > 0

    def test_runs_match_directions(self, routed_tile, tech):
        _fp, _pl, grid, _router, routed = routed_tile
        assignment = LayerAssigner(grid).run(routed)
        from repro.tech.layers import LayerDirection
        metals = tech.stack.routing_layers
        for edges in list(assignment.edges.values())[::29]:
            for e in edges:
                for run in e.runs:
                    horizontal = run.gcells[0][1] == run.gcells[1][1]
                    direction = metals[run.layer].direction
                    if horizontal:
                        assert direction is LayerDirection.HORIZONTAL
                    else:
                        assert direction is LayerDirection.VERTICAL

    def test_macro_pins_counted_in_merged_stack(self, tiny_tile, tech):
        """In a merged stack every macro-die pin connection crosses F2F."""
        from repro.core.projection import project_mol
        from repro.tech.presets import hk28_macro_die
        import repro.netlist.openpiton as op
        tile = op.build_tile(op.small_cache_config(), scale=0.02)
        projection = project_mol(tile, tech, hk28_macro_die())
        ports = place_ports(tile.netlist, projection.combined.outline)
        placement = legalize(
            global_place(tile.netlist, projection.combined, ports),
            tech.row_height,
        ).placement
        grid = RoutingGrid(
            projection.merged.stack,
            projection.combined.outline,
            merged=projection.merged,
            f2f=tech.f2f,
        )
        router = GlobalRouter(tile.netlist, placement, grid)
        routed = router.run()
        assignment = LayerAssigner(grid).run(routed)
        # At least one bump per pin of the macros actually placed in the
        # macro die (overflow banks may stay in the logic die).
        macro_die_pins = sum(
            len(tile.netlist.instance(name).master.pins)
            for name in projection.macro_die_instances
        )
        assert assignment.total_f2f >= macro_die_pins * 0.8
        assert grid.total_f2f_vias() == assignment.total_f2f
