"""Unit tests for the benchmark harness (repro.bench).

Covers the scenario registry, the BENCH artifact schema round trip,
the SVG signoff renderers (well-formed XML, bin math, color ramp), the
baseline comparator's pass/warn/fail threshold paths, and the bench
CLI compare exit codes — all on synthetic artifacts, so no flow runs —
plus the runner's failure isolation (a crashing or budget-overrunning
scenario fails alone), which does run one tiny real scenario.
"""

import copy
import os
import xml.etree.ElementTree as ET

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    BenchArtifact,
    MetricSpec,
    Scenario,
    StageTiming,
    all_scenarios,
    artifact_filename,
    compare_artifacts,
    format_diff_table,
    get_scenario,
    histogram_bins,
    load_baseline,
    ramp_color,
    register_scenario,
    render_congestion_svg,
    render_slack_histogram_svg,
    run_benchmarks,
    unregister_scenario,
    worst_status,
)
from repro.bench.scenarios import FLOW_RUNNERS, SIZES
from repro.cli import build_parser, main


def make_artifact(**overrides) -> BenchArtifact:
    """A fully populated synthetic artifact for comparator tests."""
    artifact = BenchArtifact(
        scenario="macro3d-smallcache-small",
        flow="Macro-3D",
        config="smallcache",
        size="small",
        scale=0.015,
        design="tile",
        stages=[
            StageTiming("build_tile", 1.0, 50_000),
            StageTiming("place", 8.0, 120_000),
            StageTiming("route", 6.0, 130_000),
        ],
        wall_s_total=15.0,
        peak_rss_kb=130_000,
        counters={
            "maze_expansions": 10_000.0,
            "cg_iterations": 500.0,
            "sizing_iterations": 6.0,
            "f2f_vias": 4_000.0,
        },
        gauges={"min_period_ps": 2000.0},
        histograms={
            "legalize_displacement_um": {
                "count": 2, "total": 10.0, "min": 4.0, "max": 6.0,
                "mean": 5.0, "p50": 4.0, "p95": 6.0, "p99": 6.0,
            },
        },
        ppa={
            "fclk_mhz": 500.0,
            "emean_fj": 100.0,
            "total_wirelength_m": 2.0,
            "f2f_bumps": 4100.0,
            "power_uw": 5000.0,
            "routing_overflow": 0.0,
            "num_repeaters": 40.0,
        },
        meta={"python": "3.11.0", "platform": "linux"},
    )
    for key, value in overrides.items():
        setattr(artifact, key, value)
    return artifact


class TestScenarioRegistry:
    def test_full_grid(self):
        scenarios = all_scenarios()
        # 4 flows x 2 cache configs x 2 sizes, plus the large tier.
        assert len(scenarios) == 17
        assert len({s.name for s in scenarios}) == 17

    def test_small_tier_has_eight(self):
        small = all_scenarios(size="small")
        assert len(small) == 8
        assert all(s.size == "small" for s in small)

    def test_medium_tier_has_eight(self):
        medium = all_scenarios(size="medium")
        assert len(medium) == 8
        assert all(s.size == "medium" for s in medium)

    def test_large_tier_is_budget_gated(self):
        large = all_scenarios(size="large")
        assert [s.name for s in large] == ["macro3d-largecache-large"]
        scenario = large[0]
        assert scenario.wall_budget_s is not None
        assert scenario.wall_budget_s > 0
        # Grid tiers stay baseline-gated, not budget-gated.
        assert all(
            s.wall_budget_s is None
            for s in all_scenarios(size="small") + all_scenarios(size="medium")
        )

    def test_lookup_and_errors(self):
        s = get_scenario("macro3d-largecache-small")
        assert s.flow == "macro3d" and s.config == "largecache"
        assert s.scale == SIZES["small"][0]
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("warp-drive")
        with pytest.raises(KeyError, match="unknown size"):
            all_scenarios(size="galactic")

    def test_artifact_filename(self):
        assert artifact_filename("2d-smallcache-small") == (
            "BENCH_2d-smallcache-small.json"
        )


class TestArtifactSchema:
    def test_round_trip_is_exact(self):
        artifact = make_artifact()
        text = artifact.to_json()
        again = BenchArtifact.from_json(text)
        assert again.to_json() == text
        assert again.scenario == artifact.scenario
        assert again.stage("place").wall_s == 8.0
        assert again.counters["f2f_vias"] == 4000.0

    def test_schema_marker_enforced(self):
        data = copy.deepcopy(make_artifact().to_dict())
        assert data["schema"] == BENCH_SCHEMA
        data["schema"] = "bogus/v0"
        with pytest.raises(ValueError, match="not a bench artifact"):
            BenchArtifact.from_dict(data)

    def test_null_rss_round_trips(self):
        artifact = make_artifact(peak_rss_kb=None)
        artifact.stages[0].peak_rss_kb = None
        again = BenchArtifact.from_json(artifact.to_json())
        assert again.peak_rss_kb is None
        assert again.stage("build_tile").peak_rss_kb is None

    def test_lookup_paths(self):
        artifact = make_artifact()
        assert artifact.lookup("wall_s_total") == 15.0
        assert artifact.lookup("ppa.fclk_mhz") == 500.0
        assert artifact.lookup("counters.f2f_vias") == 4000.0
        assert artifact.lookup("stages.route.wall_s") == 6.0
        assert artifact.lookup("stages.nope.wall_s") is None
        assert artifact.lookup("ppa.nope") is None


class TestSvgRenderers:
    def test_congestion_svg_well_formed(self):
        layers = [
            ("M1", [[0.0, 0.5], [1.0, 0.2]]),
            ("M2", [[0.9, 0.9], [0.9, 0.9]]),
        ]
        doc = render_congestion_svg(layers, cell_px=10)
        root = ET.fromstring(doc)  # raises on malformed XML
        assert root.tag.endswith("svg")
        texts = [
            el.text for el in root.iter()
            if el.tag.endswith("text")
        ]
        assert "M1" in texts and "M2" in texts

    def test_congestion_runs_merge_uniform_rows(self):
        # A 4x1 uniform row collapses to the background fill only; a row
        # of distinct utilizations emits one rect per cell.
        uniform = [("L", [[0.8], [0.8], [0.8], [0.8]])]
        varied = [("L", [[0.1], [0.4], [0.7], [1.0]])]
        ns = "{http://www.w3.org/2000/svg}"
        count_u = len(ET.fromstring(
            render_congestion_svg(uniform)).findall(f"{ns}rect"))
        count_v = len(ET.fromstring(
            render_congestion_svg(varied)).findall(f"{ns}rect"))
        assert count_v == count_u + 3

    def test_congestion_empty_layers(self):
        doc = render_congestion_svg([])
        assert "no layers" in doc
        ET.fromstring(doc)

    def test_ramp_monotone_green_to_red(self):
        def channels(t):
            color = ramp_color(t)
            return int(color[1:3], 16), int(color[3:5], 16), int(color[5:7], 16)

        reds = [channels(t / 10.0)[0] for t in range(11)]
        greens = [channels(t / 10.0)[1] for t in range(11)]
        assert reds == sorted(reds)
        assert greens[0] > greens[-1]
        # Out-of-range utilization clips instead of wrapping.
        assert ramp_color(4.2) == ramp_color(1.0)
        assert ramp_color(-1.0) == ramp_color(0.0)

    def test_histogram_bins_cover_all_values(self):
        values = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 5.0, 5.0]
        edges, counts = histogram_bins(values, nbins=5)
        assert len(edges) == 6 and len(counts) == 5
        assert sum(counts) == len(values)
        assert edges[0] == 0.0 and edges[-1] == 5.0
        assert counts[-1] == 4  # 4.0 lands in [4, 5]; top edge inclusive

    def test_histogram_bins_degenerate(self):
        edges, counts = histogram_bins([], nbins=4)
        assert counts == [0, 0, 0, 0]
        edges, counts = histogram_bins([2.0, 2.0], nbins=4)
        assert sum(counts) == 2
        with pytest.raises(ValueError):
            histogram_bins([1.0], nbins=0)

    def test_slack_histogram_svg(self):
        doc = render_slack_histogram_svg([10.0, 20.0, 20.0, 400.0])
        root = ET.fromstring(doc)
        assert "n=4" in doc
        ns = "{http://www.w3.org/2000/svg}"
        bars = [
            r for r in root.findall(f"{ns}rect")
            if r.get("fill") == "#4878a8"
        ]
        assert 1 <= len(bars) <= 20


class TestComparator:
    def test_identical_artifacts_pass(self):
        artifact = make_artifact()
        deltas = compare_artifacts(artifact, make_artifact())
        assert worst_status(deltas) == "ok"
        assert all(d.status == "ok" for d in deltas)

    def test_warn_band(self):
        current = make_artifact(wall_s_total=16.0)  # +6.7 % wall time
        deltas = compare_artifacts(current, make_artifact())
        by_path = {d.path: d for d in deltas}
        assert by_path["wall_s_total"].status == "warn"
        assert worst_status(deltas) == "warn"

    def test_fail_on_wall_time(self):
        current = make_artifact(wall_s_total=17.0)  # +13 % > 10 % threshold
        deltas = compare_artifacts(current, make_artifact())
        assert worst_status(deltas) == "fail"

    def test_fail_on_wirelength(self):
        artifact = make_artifact()
        artifact.ppa["total_wirelength_m"] = 2.05  # +2.5 % > 2 %
        deltas = compare_artifacts(artifact, make_artifact())
        by_path = {d.path: d for d in deltas}
        assert by_path["ppa.total_wirelength_m"].status == "fail"

    def test_direction_lower_is_worse_for_fclk(self):
        slower = make_artifact()
        slower.ppa["fclk_mhz"] = 485.0  # -3 % fclk: regression
        deltas = compare_artifacts(slower, make_artifact())
        by_path = {d.path: d for d in deltas}
        assert by_path["ppa.fclk_mhz"].status == "fail"

        faster = make_artifact()
        faster.ppa["fclk_mhz"] = 550.0  # +10 % fclk: improvement, passes
        deltas = compare_artifacts(faster, make_artifact())
        by_path = {d.path: d for d in deltas}
        assert by_path["ppa.fclk_mhz"].status == "ok"

    def test_gate_time_off_demotes_to_warn(self):
        current = make_artifact(wall_s_total=30.0)  # +100 % wall time
        deltas = compare_artifacts(
            current, make_artifact(), gate_time=False
        )
        by_path = {d.path: d for d in deltas}
        assert by_path["wall_s_total"].status == "warn"
        assert worst_status(deltas) == "warn"
        # QoR regressions still fail with the time gate off.
        current.ppa["total_wirelength_m"] = 3.0
        deltas = compare_artifacts(
            current, make_artifact(), gate_time=False
        )
        assert worst_status(deltas) == "fail"

    def test_metric_on_one_side_only_is_flagged(self):
        current = make_artifact()
        del current.counters["maze_expansions"]
        deltas = compare_artifacts(current, make_artifact())
        by_path = {d.path: d for d in deltas}
        assert by_path["counters.maze_expansions"].status == "missing"

    def test_metric_absent_on_both_sides_is_skipped(self):
        current = make_artifact(peak_rss_kb=None)
        baseline = make_artifact(peak_rss_kb=None)
        deltas = compare_artifacts(current, baseline)
        assert "peak_rss_kb" not in {d.path for d in deltas}

    def test_zero_baseline_handled(self):
        spec = (MetricSpec("ppa.routing_overflow", "up", 5.0, 10.0),)
        current = make_artifact()
        deltas = compare_artifacts(current, make_artifact(), specs=spec)
        assert deltas[0].status == "ok"  # 0 -> 0 is not a regression
        current.ppa["routing_overflow"] = 4.0
        deltas = compare_artifacts(current, make_artifact(), specs=spec)
        assert deltas[0].status == "fail"  # 0 -> 4 is infinite growth

    def test_diff_table_mentions_everything(self):
        current = make_artifact(wall_s_total=17.0)
        deltas = compare_artifacts(current, make_artifact())
        table = format_diff_table("macro3d-smallcache-small", deltas)
        assert "macro3d-smallcache-small" in table
        assert "wall_s_total" in table
        assert "FAIL" in table
        assert "overall: FAIL" in table


class TestBenchCli:
    def _write(self, directory, artifact):
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(
            directory, artifact_filename(artifact.scenario)
        )
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(artifact.to_json())

    def test_parser_accepts_bench_commands(self):
        parser = build_parser()
        args = parser.parse_args(
            ["bench", "run", "--all", "--size", "small", "--out", "x"]
        )
        assert args.all and args.size == "small"
        args = parser.parse_args(["bench", "compare", "--no-gate-time"])
        assert args.no_gate_time
        args = parser.parse_args(["run", "--quiet"])
        assert args.quiet

    def test_bench_list_prints_registry(self, capsys):
        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        assert "macro3d-smallcache-small" in out
        assert "2d-largecache-medium" in out

    def test_compare_ok_exit_zero(self, tmp_path, capsys):
        out_dir, base_dir = str(tmp_path / "out"), str(tmp_path / "base")
        self._write(out_dir, make_artifact())
        self._write(base_dir, make_artifact())
        code = main(
            ["bench", "compare", "--out", out_dir, "--baseline", base_dir]
        )
        assert code == 0
        assert "ok" in capsys.readouterr().out

    def test_compare_regression_exit_nonzero(self, tmp_path, capsys):
        out_dir, base_dir = str(tmp_path / "out"), str(tmp_path / "base")
        bad = make_artifact()
        bad.ppa["total_wirelength_m"] = 3.0  # +50 % wirelength
        self._write(out_dir, bad)
        self._write(base_dir, make_artifact())
        code = main(
            ["bench", "compare", "--out", out_dir, "--baseline", base_dir]
        )
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_compare_missing_baseline_passes_with_notice(
        self, tmp_path, capsys
    ):
        out_dir, base_dir = str(tmp_path / "out"), str(tmp_path / "base")
        self._write(out_dir, make_artifact())
        code = main(
            ["bench", "compare", "--out", out_dir, "--baseline", base_dir]
        )
        assert code == 0
        assert "no baseline" in capsys.readouterr().out
        assert load_baseline(base_dir, "macro3d-smallcache-small") is None

    def test_compare_empty_dir_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["bench", "compare", "--out", str(tmp_path / "void")])

    def test_report_summarizes(self, tmp_path, capsys):
        out_dir = str(tmp_path / "out")
        self._write(out_dir, make_artifact())
        assert main(["bench", "report", "--out", out_dir, "--stages"]) == 0
        out = capsys.readouterr().out
        assert "macro3d-smallcache-small" in out
        assert "build_tile" in out

    def test_report_handles_null_rss(self, tmp_path, capsys):
        out_dir = str(tmp_path / "out")
        self._write(out_dir, make_artifact(peak_rss_kb=None))
        assert main(["bench", "report", "--out", out_dir]) == 0
        assert "n/a" in capsys.readouterr().out


def _boom_flow(config, scale, options):
    raise RuntimeError("kaboom: injected bench-worker crash")


class TestRunnerFailures:
    """A raising scenario fails alone; the rest of the run completes."""

    TINY = Scenario(
        name="2d-smallcache-crashtest",
        flow="2d",
        config="smallcache",
        size="crashtest",
        scale=0.01,
        sizing_iterations=1,
    )
    BOOM = Scenario(
        name="boom-smallcache-crashtest",
        flow="boom",
        config="smallcache",
        size="crashtest",
        scale=0.01,
        sizing_iterations=1,
    )

    @pytest.fixture()
    def crash_registry(self, monkeypatch):
        monkeypatch.setitem(FLOW_RUNNERS, "boom", _boom_flow)
        register_scenario(self.TINY)
        register_scenario(self.BOOM)
        yield
        unregister_scenario(self.TINY.name)
        unregister_scenario(self.BOOM.name)

    def _check_crash_isolated(self, out_dir, jobs):
        results, _schedule, failures = run_benchmarks(
            [self.BOOM, self.TINY], str(out_dir), svg=False, jobs=jobs
        )
        assert [f.scenario for f in failures] == [self.BOOM.name]
        assert "kaboom" in failures[0].error
        assert "RuntimeError" in failures[0].traceback
        assert "kaboom" in failures[0].traceback
        # The healthy scenario still completed and wrote its artifact.
        assert [s.name for s, _a, _p in results] == [self.TINY.name]
        assert os.path.exists(
            os.path.join(str(out_dir), artifact_filename(self.TINY.name))
        )

    def test_serial_crash_fails_that_scenario_only(
        self, tmp_path, crash_registry
    ):
        self._check_crash_isolated(tmp_path / "serial", jobs=1)

    def test_parallel_crash_surfaces_worker_traceback(
        self, tmp_path, crash_registry
    ):
        self._check_crash_isolated(tmp_path / "parallel", jobs=2)

    def test_wall_budget_overrun_fails_but_keeps_artifact(self, tmp_path):
        slow = Scenario(
            name="2d-smallcache-budgettest",
            flow="2d",
            config="smallcache",
            size="budgettest",
            scale=0.01,
            sizing_iterations=1,
            wall_budget_s=1e-6,
        )
        register_scenario(slow)
        try:
            results, _schedule, failures = run_benchmarks(
                [slow], str(tmp_path), svg=False, jobs=1
            )
        finally:
            unregister_scenario(slow.name)
        assert [f.scenario for f in failures] == [slow.name]
        assert "budget" in failures[0].error
        assert failures[0].traceback == ""
        # The artifact is valid (just slow): it stays in the results.
        assert [s.name for s, _a, _p in results] == [slow.name]


class TestCommittedBaselines:
    """The repo ships baselines for every small scenario (acceptance)."""

    @property
    def baseline_dir(self):
        from repro.bench import DEFAULT_BASELINE_DIR

        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        return os.path.join(repo_root, DEFAULT_BASELINE_DIR)

    def test_all_small_scenarios_have_baselines(self):
        missing = [
            s.name for s in all_scenarios(size="small")
            if load_baseline(self.baseline_dir, s.name) is None
        ]
        assert not missing, f"baselines missing for {missing}"

    def test_baselines_validate_against_schema(self):
        for scenario in all_scenarios(size="small"):
            baseline = load_baseline(self.baseline_dir, scenario.name)
            assert baseline is not None
            assert baseline.scenario == scenario.name
            assert baseline.wall_s_total > 0.0
            assert baseline.ppa["fclk_mhz"] > 0.0
            assert baseline.stages, scenario.name
