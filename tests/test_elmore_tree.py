"""The standalone RC-tree Elmore calculator against hand mathematics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.extract.elmore import RCTree


class TestRCTree:
    def test_single_segment(self):
        tree = RCTree("drv")
        tree.add_branch("drv", "sink", resistance=1000.0, capacitance=10.0)
        tree.add_cap("sink", 2.0)
        # R * (C/2 + Cpin) = 1000 * 7 fF = 7 ps.
        assert tree.delay_to("sink") == pytest.approx(7.0)

    def test_driver_resistance_sees_everything(self):
        tree = RCTree("drv")
        tree.add_branch("drv", "sink", 1000.0, 10.0)
        tree.add_cap("sink", 2.0)
        base = tree.delay_to("sink")
        with_driver = tree.delay_to("sink", driver_resistance=500.0)
        assert with_driver == pytest.approx(base + 0.5 * 12.0)

    def test_branching_tree(self):
        tree = RCTree("drv")
        tree.add_branch("drv", "mid", 100.0, 20.0)
        tree.add_branch("mid", "a", 200.0, 10.0)
        tree.add_branch("mid", "b", 300.0, 10.0)
        tree.add_cap("a", 1.0)
        tree.add_cap("b", 1.0)
        # delay(a) = 100*(10 + 5+5 + 1+1... ) — downstream of mid:
        # mid cap 10+5+5=20, a: 5+1, b: 5+1 -> downstream(mid)=32
        d_a = 100.0 * 32.0 * 1e-3 + 200.0 * 6.0 * 1e-3
        assert tree.delay_to("a") == pytest.approx(d_a)
        # The heavier branch resistance makes b slower than a.
        assert tree.delay_to("b") > tree.delay_to("a")

    def test_total_capacitance(self):
        tree = RCTree("drv")
        tree.add_branch("drv", "x", 10.0, 8.0)
        tree.add_cap("x", 2.0)
        assert tree.total_capacitance() == pytest.approx(10.0)

    def test_errors(self):
        tree = RCTree("drv")
        with pytest.raises(KeyError):
            tree.add_branch("ghost", "x", 1.0)
        tree.add_branch("drv", "x", 1.0)
        with pytest.raises(ValueError):
            tree.add_branch("drv", "x", 1.0)
        with pytest.raises(KeyError):
            tree.delay_to("ghost")

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.floats(1, 1000), st.floats(0.1, 50)),
                    min_size=1, max_size=10))
    def test_chain_monotone(self, segments):
        """Delay along a chain is strictly non-decreasing."""
        tree = RCTree("n0")
        for k, (r, c) in enumerate(segments):
            tree.add_branch(f"n{k}", f"n{k + 1}", r, c)
        delays = [tree.delay_to(f"n{k}") for k in range(len(segments) + 1)]
        for before, after in zip(delays, delays[1:]):
            assert after >= before

    @settings(max_examples=30, deadline=None)
    @given(st.floats(1, 2000), st.floats(0.5, 100))
    def test_matches_lumped_bound(self, r, c):
        """Elmore of one segment is between RC/2 and RC (classic bounds)."""
        tree = RCTree("a")
        tree.add_branch("a", "b", r, c)
        delay = tree.delay_to("b")
        assert r * c / 2.0 * 1e-3 - 1e-9 <= delay <= r * c * 1e-3 + 1e-9
