"""Timing reports, SPEF dumps, and the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.extract.rc import extract_design
from repro.io.spef import diff_spef, parse_spef, write_spef
from repro.opt.buffering import plan_buffers
from repro.timing.constraints import TimingConstraints
from repro.timing.graph import TimingGraph
from repro.timing.reports import (
    report_critical_path,
    report_summary,
    report_worst_endpoints,
)
from repro.timing.sta import run_sta


@pytest.fixture(scope="module")
def signoff_bits(tiny_tile, tech):
    """A routed tiny tile with STA artifacts for report testing."""
    from repro.floorplan.macro_placer import place_macros_2d
    from repro.flows.base import FlowOptions, place_design, route_design
    netlist = tiny_tile.netlist
    options = FlowOptions()
    fp = place_macros_2d(tiny_tile)
    placement, _legal, _ports = place_design(
        netlist, fp, tech.row_height, options
    )
    _grid, routed, assignment = route_design(
        netlist, placement, tech.stack, fp, options
    )
    slow = extract_design(routed, assignment, tech.corners.slowest)
    plan = plan_buffers(slow, tiny_tile.library)
    graph = TimingGraph(netlist)
    result = run_sta(graph, slow, plan, TimingConstraints())
    return netlist, slow, plan, result


class TestTimingReports:
    def test_worst_endpoints_ranked(self, signoff_bits):
        _nl, _slow, _plan, result = signoff_bits
        text = report_worst_endpoints(result, count=5)
        assert "fmax" in text
        lines = [l for l in text.splitlines() if ". " in l]
        assert len(lines) == 5
        # First entry demands the longest period (slack-to-worst ~0).
        assert " 1. " in lines[0]

    def test_critical_path_columns(self, signoff_bits):
        netlist, slow, plan, result = signoff_bits
        text = report_critical_path(result, netlist, slow, plan)
        assert result.critical.endpoint in text
        assert "wire ps" in text and "cell ps" in text
        # Every net of the path appears.
        for name in result.critical.nets[:3]:
            assert name[:30] in text

    def test_summary_concatenates(self, signoff_bits):
        netlist, slow, plan, result = signoff_bits
        text = report_summary(result, netlist, slow, plan)
        assert "Worst" in text and "Critical path" in text


class TestSpef:
    def test_roundtrip(self, signoff_bits):
        netlist, slow, _plan, _result = signoff_bits
        text = write_spef(netlist.name, slow)
        design, corner, nets = parse_spef(text)
        assert design == netlist.name
        assert corner == slow.corner.name
        assert len(nets) == len(slow.nets)
        name, rc = next(iter(slow.nets.items()))
        parsed = nets[name]
        assert parsed["cwire"] == pytest.approx(rc.wire_cap, abs=1e-3)
        for sink in rc.elmore:
            assert parsed["sinks"][sink]["elmore"] == pytest.approx(
                rc.elmore[sink], abs=1e-3
            )

    def test_diff_finds_mispredictions(self, signoff_bits):
        netlist, slow, _plan, _result = signoff_bits
        _d, _c, nets_a = parse_spef(write_spef("a", slow))
        # Fabricate a pseudo view with one net badly mispredicted.
        import copy
        nets_b = copy.deepcopy(nets_a)
        victim = next(n for n, v in nets_b.items() if v["sinks"])
        sink = next(iter(nets_b[victim]["sinks"]))
        nets_b[victim]["sinks"][sink]["elmore"] += 500.0
        worst = diff_spef(nets_a, nets_b, top=3)
        assert worst[0][0] == victim
        assert worst[0][1] == pytest.approx(500.0, abs=1e-6)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_spef("NET x CWIRE 1.0 CPIN 0.0 F2F 0\nEND\n")


class TestCli:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["run", "--flow", "2d", "--scale", "0.02"])
        assert args.flow == "2d" and args.scale == 0.02
        args = parser.parse_args(["compare", "--config", "large"])
        assert args.config == "large"

    def test_unknown_flow_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "--flow", "teleport"])

    def test_floorplans_command_runs(self, capsys):
        code = main(["floorplans", "--config", "small", "--scale", "0.02"])
        assert code == 0
        out = capsys.readouterr().out
        assert "macro die" in out and "M" in out

    def test_run_command_runs(self, capsys):
        code = main(["run", "--flow", "2d", "--scale", "0.02"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fclk [MHz]" in out
