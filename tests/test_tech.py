"""Technology layer: stacks, corners, presets, BEOL merging."""

import pytest

from repro.tech.beol import MACRO_DIE_SUFFIX, merge_beol, rename_to_macro_die
from repro.tech.corners import Corner, CornerSet, default_corner_set
from repro.tech.layers import (
    CutLayer,
    LayerDirection,
    LayerStack,
    RoutingLayer,
)
from repro.tech.presets import hk28, hk28_macro_die, hk28_stack
from repro.tech.technology import F2FViaSpec


def metal(name, direction=LayerDirection.HORIZONTAL):
    return RoutingLayer(name, direction, 0.1, 0.05, 0.09, 3.0, 0.2)


def cut(name):
    return CutLayer(name, 5.0, 0.05, 0.1, 0.05, 0.1)


class TestLayerStack:
    def test_must_alternate(self):
        with pytest.raises(ValueError):
            LayerStack([metal("M1"), metal("M2")])
        with pytest.raises(ValueError):
            LayerStack([metal("M1"), cut("V1"), cut("V2")])

    def test_must_start_and_end_with_routing(self):
        with pytest.raises(ValueError):
            LayerStack([cut("V1"), metal("M1")])
        with pytest.raises(ValueError):
            LayerStack([metal("M1"), cut("V1")])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            LayerStack([metal("M1"), cut("V"), metal("M1")])

    def test_lookup(self):
        stack = hk28_stack(6)
        assert stack.routing_index("M4") == 3
        assert stack.routing_layer("M4").name == "M4"
        assert "M4" in stack and "M9" not in stack
        with pytest.raises(KeyError):
            stack.routing_layer("VIA12")

    def test_cut_between(self):
        stack = hk28_stack(6)
        assert stack.cut_between(0).name == "VIA12"
        with pytest.raises(IndexError):
            stack.cut_between(5)

    def test_with_suffix(self):
        stack = hk28_stack(3).with_suffix("_MD")
        assert [l.name for l in stack.routing_layers] == [
            "M1_MD", "M2_MD", "M3_MD",
        ]

    def test_truncated(self):
        stack = hk28_stack(6).truncated(4)
        assert stack.num_routing_layers == 4
        assert stack.layers[-1].name == "M4"
        with pytest.raises(ValueError):
            hk28_stack(6).truncated(7)

    def test_total_metal_area(self):
        assert hk28_stack(6).total_metal_area(100.0) == pytest.approx(600.0)


class TestCorners:
    def test_default_set_roles(self):
        corners = default_corner_set(0.9)
        assert corners.slowest.delay_derate > 1.0
        assert corners.typical.delay_derate == 1.0
        assert len(corners) == 3
        assert set(corners.names()) == {c.name for c in corners}

    def test_invalid_roles_rejected(self):
        c = Corner("x", 1, 1, 1, 1, 0.9)
        with pytest.raises(ValueError):
            CornerSet([c], typical="nope", slowest="x")

    def test_negative_derate_rejected(self):
        with pytest.raises(ValueError):
            Corner("bad", -1.0, 1, 1, 1, 0.9)


class TestF2F:
    def test_paper_defaults(self):
        f2f = F2FViaSpec()
        assert f2f.pitch == 1.0
        assert f2f.size == 0.5
        assert f2f.height == pytest.approx(0.17)
        assert f2f.resistance == pytest.approx(0.044)
        assert f2f.capacitance == pytest.approx(1.0)

    def test_size_cannot_exceed_pitch(self):
        with pytest.raises(ValueError):
            F2FViaSpec(pitch=0.4, size=0.5)

    def test_max_bumps(self):
        assert F2FViaSpec().max_bumps(100.0) == 100

    def test_as_cut_layer(self):
        layer = F2FViaSpec().as_cut_layer()
        assert layer.name == "F2F_VIA"
        assert layer.resistance == pytest.approx(0.044)


class TestMergeBeol:
    def test_layer_order_macro_die_flipped(self):
        merged = merge_beol(hk28_stack(6), hk28_stack(4), F2FViaSpec())
        names = [l.name for l in merged.stack.routing_layers]
        # Logic die bottom-up, then macro die top-metal first.
        assert names == [
            "M1", "M2", "M3", "M4", "M5", "M6",
            "M4_MD", "M3_MD", "M2_MD", "M1_MD",
        ]

    def test_f2f_between_dies(self):
        merged = merge_beol(hk28_stack(6), hk28_stack(4), F2FViaSpec())
        cuts = [l.name for l in merged.stack.cut_layers]
        assert cuts[5] == "F2F_VIA"

    def test_boundary_index(self):
        merged = merge_beol(hk28_stack(6), hk28_stack(4), F2FViaSpec())
        assert merged.f2f_routing_boundary == 5  # M6

    def test_die_of_layer(self):
        merged = merge_beol(hk28_stack(6), hk28_stack(4), F2FViaSpec())
        assert merged.die_of_layer("M3") == "logic"
        assert merged.die_of_layer("M3_MD") == "macro"
        assert merged.die_of_layer("F2F_VIA") == "f2f"
        with pytest.raises(KeyError):
            merged.die_of_layer("M9")

    def test_crossing_requires_unique_names(self):
        assert rename_to_macro_die("M3") == "M3" + MACRO_DIE_SUFFIX


class TestPresets:
    def test_hk28_shape(self):
        tech = hk28()
        assert tech.num_metal_layers == 6
        assert tech.node_nm == 28
        assert tech.row_height == pytest.approx(1.2)
        directions = [l.direction for l in tech.stack.routing_layers]
        for below, above in zip(directions, directions[1:]):
            assert below != above  # alternating H/V

    def test_macro_die_variant(self):
        assert hk28_macro_die(4).num_metal_layers == 4

    def test_layer_count_bounds(self):
        with pytest.raises(ValueError):
            hk28_stack(0)
        with pytest.raises(ValueError):
            hk28_stack(7)

    def test_with_stack_preserves_rest(self):
        tech = hk28()
        thin = tech.with_stack(hk28_stack(4))
        assert thin.num_metal_layers == 4
        assert thin.row_height == tech.row_height
        assert thin.corners is tech.corners

    def test_upper_layers_less_resistive(self):
        stack = hk28_stack(6)
        metals = stack.routing_layers
        assert metals[-1].r_per_um < metals[0].r_per_um
        assert metals[-1].pitch > metals[0].pitch
