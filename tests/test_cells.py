"""Cell layer: standard cells, library, macros, SRAM compiler."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.cells.library import DRIVE_STRENGTHS, default_library
from repro.cells.macro import Macro, MacroPin, Obstruction
from repro.cells.memory_compiler import SRAMCompiler, SRAMConfig
from repro.cells.stdcell import PinDirection, StdCell, StdCellPin
from repro.geom import Point, Rect
from tests.conftest import make_test_macro


class TestStdCell:
    def test_delay_increases_with_load(self, library):
        cell = library.cell("INV_X1")
        assert cell.delay(10.0) > cell.delay(1.0)

    def test_delay_derate(self, library):
        cell = library.cell("NAND2_X2")
        assert cell.delay(5.0, derate=1.3) == pytest.approx(cell.delay(5.0) * 1.3)

    def test_sequential_needs_clock(self):
        with pytest.raises(ValueError):
            StdCell(
                name="BADFF", width=1.0, height=1.0,
                pins=(StdCellPin("D", PinDirection.INPUT, 1.0),
                      StdCellPin("Q", PinDirection.OUTPUT)),
                is_sequential=True,
            )

    def test_duplicate_pins_rejected(self):
        with pytest.raises(ValueError):
            StdCell(
                name="X", width=1.0, height=1.0,
                pins=(StdCellPin("A", PinDirection.INPUT, 1.0),
                      StdCellPin("A", PinDirection.INPUT, 1.0)),
            )

    def test_pin_lookup(self, library):
        cell = library.cell("DFF_X1")
        assert cell.pin("CK").is_clock
        assert cell.clock_pin.name == "CK"
        with pytest.raises(KeyError):
            cell.pin("ZZ")

    def test_input_output_classification(self, library):
        nand = library.cell("NAND2_X4")
        assert {p.name for p in nand.input_pins} == {"A", "B"}
        assert [p.name for p in nand.output_pins] == ["Y"]


class TestLibrary:
    def test_every_family_has_all_drives(self, library):
        for base in library.base_names:
            family = library.family(base)
            assert [c.drive_index for c in family] == list(DRIVE_STRENGTHS)

    def test_drive_scaling(self, library):
        x1 = library.cell("INV_X1")
        x4 = library.cell("INV_X4")
        assert x4.drive_resistance == pytest.approx(x1.drive_resistance / 4)
        assert x4.pin("A").capacitance == pytest.approx(
            x1.pin("A").capacitance * 4
        )
        assert x4.area == pytest.approx(x1.area * 4)

    def test_next_drive_up_down(self, library):
        x2 = library.cell("BUF_X2")
        assert library.next_drive_up(x2).drive_index == 4
        assert library.next_drive_down(x2).drive_index == 1
        x16 = library.cell("BUF_X16")
        assert library.next_drive_up(x16) is None
        x1 = library.cell("BUF_X1")
        assert library.next_drive_down(x1) is None

    def test_width_scale(self):
        wide = default_library(width_scale=10.0)
        thin = default_library(width_scale=1.0)
        assert wide.cell("INV_X1").width == pytest.approx(
            thin.cell("INV_X1").width * 10
        )
        # Timing untouched by width scaling.
        assert wide.cell("INV_X1").drive_resistance == pytest.approx(
            thin.cell("INV_X1").drive_resistance
        )

    def test_unknown_cell(self, library):
        with pytest.raises(KeyError):
            library.cell("MYSTERY_X3")

    def test_invalid_width_scale(self):
        with pytest.raises(ValueError):
            default_library(width_scale=0.0)


class TestMacro:
    def test_pin_outside_extents_rejected(self):
        with pytest.raises(ValueError):
            Macro(
                name="BAD", width=10, height=10,
                pins=(MacroPin("P", PinDirection.INPUT, Point(11, 0), "M4"),),
            )

    def test_layer_suffix_edit(self, test_macro):
        edited = test_macro.with_layer_suffix("_MD")
        assert edited.name == test_macro.name + "_MD"
        assert all(p.layer == "M4_MD" for p in edited.pins)
        assert edited.obstruction_layers() == [
            "M1_MD", "M2_MD", "M3_MD", "M4_MD",
        ]
        # Geometry untouched (paper Sec. IV).
        for before, after in zip(test_macro.pins, edited.pins):
            assert before.offset == after.offset

    def test_shrunk_substrate(self, test_macro):
        shrunk = test_macro.with_shrunk_substrate(0.2, 1.2)
        assert shrunk.substrate_area == pytest.approx(0.24)
        assert shrunk.area == test_macro.area  # full extents unchanged
        restored = shrunk.with_restored_substrate()
        assert restored.substrate_area == test_macro.area

    def test_pin_classification(self, test_macro):
        assert test_macro.clock_pin.name == "CLK"
        assert len(test_macro.input_pins) == 5  # CE + 4 DIN (CLK excluded)
        assert len(test_macro.output_pins) == 4


class TestSRAMCompiler:
    def test_deterministic(self):
        compiler = SRAMCompiler()
        config = SRAMConfig(capacity_bytes=4096, word_bits=32)
        a, b = compiler.compile(config), compiler.compile(config)
        assert a.width == b.width and len(a.pins) == len(b.pins)

    def test_pin_count(self):
        macro = SRAMCompiler().compile(SRAMConfig(4096, 32))
        # CLK + CE + WE + 10 addr + 32 din + 32 dout.
        assert len(macro.pins) == 3 + 10 + 32 + 32

    def test_obstructions_cover_m1_to_m4(self, sram):
        assert sram.obstruction_layers() == ["M1", "M2", "M3", "M4"]
        for obs in sram.obstructions:
            assert obs.rect.area == pytest.approx(sram.area)

    def test_area_scales_with_capacity(self):
        compiler = SRAMCompiler()
        small = compiler.macro_area(SRAMConfig(1024, 32))
        big = compiler.macro_area(SRAMConfig(4096, 32))
        assert big > 3.0 * small

    def test_max_width_respected(self):
        macro = SRAMCompiler(max_width=300.0).compile(
            SRAMConfig(256 * 1024, 128)
        )
        assert macro.width <= 300.0 + 1e-9

    def test_access_grows_with_capacity(self):
        compiler = SRAMCompiler()
        assert compiler.access_delay(SRAMConfig(64 * 1024, 64)) > (
            compiler.access_delay(SRAMConfig(1024, 64))
        )

    def test_bank_set(self):
        banks = SRAMCompiler().compile_bank_set(32 * 1024, 4, 64, "L2")
        assert len(banks) == 4
        assert {b.name for b in banks} == {f"L2_BANK{i}" for i in range(4)}
        assert banks[0].width == banks[3].width

    def test_bank_set_uneven_rejected(self):
        with pytest.raises(ValueError):
            SRAMCompiler().compile_bank_set(1000, 3, 32, "X")

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            SRAMConfig(0, 32)
        with pytest.raises(ValueError):
            SRAMConfig(100, 64)  # not a whole number of words

    @given(st.sampled_from([1, 2, 4, 8, 16, 32, 64, 128, 256]),
           st.sampled_from([16, 32, 64, 128]))
    def test_macro_always_valid(self, kb, word_bits):
        macro = SRAMCompiler().compile(SRAMConfig(kb * 1024, word_bits))
        assert macro.width > 0 and macro.height > 0
        assert macro.is_memory
        bbox = macro.bbox
        assert all(bbox.contains_point(p.offset, tol=1e-6) for p in macro.pins)
