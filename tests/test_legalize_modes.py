"""Legalizer behaviors that carry the S2D/C2D story: partial blockages,
capacity accumulation, forced overflow placement."""

import numpy as np
import pytest

from repro.floorplan.floorplan import Floorplan
from repro.floorplan.pins import place_ports
from repro.geom import Rect
from repro.netlist.core import Netlist
from repro.place.global_place import Placement
from repro.place.legalize import legalize


def _netlist_with_cells(library, count, master="INV_X1"):
    nl = Netlist("cells")
    drv = nl.add_instance("drv", library.cell("BUF_X1"))
    net = nl.add_net("n0")
    nl.connect(net, drv, "Y")
    for i in range(count):
        inst = nl.add_instance(f"c{i}", library.cell(master))
        nl.connect(net, inst, "A")
    return nl


def _placement(nl, floorplan):
    return Placement(nl, floorplan, {})


class TestPartialBlockages:
    def test_half_density_accepts_half_the_cells(self, library):
        fp = Floorplan("t", Rect(0, 0, 40, 2.4), utilization=1.0)
        fp.add_blockage(Rect(0, 0, 40, 2.4), density=0.5)
        nl = _netlist_with_cells(library, 100)
        placement = _placement(nl, fp)
        placement.x[:] = 20.0
        placement.y[:] = 1.2
        result = legalize(placement, 1.2)
        # Interval capacity is 50 % of two 40 um rows = 40 um of cells.
        width = library.cell("INV_X1").width
        capacity_cells = int(40.0 / width)
        placed_in_rows = np.count_nonzero(
            result.displacement[placement.movable] >= 0
        )
        assert result.failures == 0
        # Some cells must have been force-placed beyond capacity.
        assert result.forced >= 100 - capacity_cells - 5

    def test_stacked_partials_block_fully(self, library):
        fp = Floorplan("t", Rect(0, 0, 40, 2.4), utilization=1.0)
        fp.add_blockage(Rect(0, 0, 40, 2.4), density=0.5)
        fp.add_blockage(Rect(0, 0, 40, 2.4), density=0.5)
        nl = _netlist_with_cells(library, 10)
        placement = _placement(nl, fp)
        placement.x[:] = 20.0
        placement.y[:] = 1.2
        result = legalize(placement, 1.2)
        # Everything forced: there is no legal capacity anywhere.
        assert result.forced == nl.num_instances

    def test_ignore_partials_when_disabled(self, library):
        fp = Floorplan("t", Rect(0, 0, 40, 2.4), utilization=1.0)
        fp.add_blockage(Rect(0, 0, 40, 2.4), density=0.5)
        nl = _netlist_with_cells(library, 20)
        placement = _placement(nl, fp)
        placement.x[:] = 20.0
        placement.y[:] = 1.2
        strict = legalize(placement, 1.2, honor_partial=True)
        loose = legalize(placement, 1.2, honor_partial=False)
        assert loose.forced <= strict.forced


class TestForcedPlacement:
    def test_forced_cells_stay_inside_rows(self, library):
        fp = Floorplan("t", Rect(0, 0, 20, 4.8), utilization=1.0)
        # One hard blockage covering most of the die.
        fp.add_blockage(Rect(0, 0, 20, 3.6), density=1.0)
        nl = _netlist_with_cells(library, 200)
        placement = _placement(nl, fp)
        placement.x[:] = 10.0
        placement.y[:] = 1.0
        result = legalize(placement, 1.2)
        pl = result.placement
        m = pl.movable
        assert (pl.x[m] >= 0).all() and (pl.x[m] <= 20).all()
        assert result.forced > 0
        # Displacement recorded for the forced cells.
        assert result.displacement.max() > 0

    def test_displacement_zero_when_already_legal(self, library):
        fp = Floorplan("t", Rect(0, 0, 100, 12), utilization=1.0)
        nl = _netlist_with_cells(library, 5)
        placement = _placement(nl, fp)
        for k, inst in enumerate(nl.instances):
            placement.x[inst.id] = 5.0 + 10.0 * k
            placement.y[inst.id] = 0.6
        result = legalize(placement, 1.2)
        assert result.failures == 0
        assert result.mean_displacement < 10.0
