"""Property and integration tests for the stage cache (repro.cache).

The key layer carries the whole correctness story — a wrong hit serves
a stale checkpoint silently — so its two load-bearing properties get
the property-style treatment: byte-stability (same logical inputs hash
identically across processes and ``PYTHONHASHSEED`` values, whatever
the dict/set insertion order) and sensitivity (fault-injection style:
perturb one knob, one netlist bit, or one upstream key and the key
must move).  On top of that: store round trips (including the
deep-object-graph pickling regression), the StageChain hit/miss/replay
protocol on a synthetic three-stage flow, the spawn-platform serial
fallback of ``bench run --jobs``, and one real 2D flow run proving a
warm repeat is all hits with byte-identical QoR counters.
"""

import copy
import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.bench import (
    Scenario,
    register_scenario,
    run_benchmarks,
    scenarios_overlapped,
    unregister_scenario,
)
from repro.bench.runner import FORK_FALLBACK_MESSAGE, fork_context
from repro.bench.scenarios import FLOW_RUNNERS
from repro.cache import (
    CacheError,
    StageCache,
    StageChain,
    UnhashableInputError,
    active_cache,
    caching,
    canonical_fingerprint,
    chain_key,
    netlist_fingerprint,
    resolve_cache_dir,
    stage_key,
)
from repro.flows.base import FlowOptions
from repro.flows.flow2d import run_flow_2d
from repro.geom import Point
from repro.netlist.index import shared_geometry
from repro.netlist.openpiton import small_cache_config
from repro.obs import FlowTrace, count, observe, recording
from tests.conftest import build_mini_netlist


class TestCanonicalFingerprint:
    def test_dict_order_insensitive(self):
        a = {"placer": "cg", "iterations": 40, "seed": 2020}
        b = {"seed": 2020, "iterations": 40, "placer": "cg"}
        assert canonical_fingerprint(a) == canonical_fingerprint(b)

    def test_nested_container_order_insensitive(self):
        a = {"opts": {"x": 1, "y": 2}, "tags": {"fast", "wide"}}
        b = {"tags": {"wide", "fast"}, "opts": {"y": 2, "x": 1}}
        assert canonical_fingerprint(a) == canonical_fingerprint(b)

    def test_type_tags_keep_lookalikes_distinct(self):
        keys = {canonical_fingerprint(v) for v in (1, 1.0, "1", True, None)}
        assert len(keys) == 5

    def test_sequence_order_matters(self):
        assert canonical_fingerprint([1, 2]) != canonical_fingerprint([2, 1])

    def test_value_sensitivity(self):
        base = {"knobs": {"scale": 0.02, "sizing": 3}}
        edited = copy.deepcopy(base)
        edited["knobs"]["sizing"] = 4
        assert canonical_fingerprint(base) != canonical_fingerprint(edited)

    def test_numpy_arrays_hash_by_content(self):
        a = np.arange(12, dtype=np.float64).reshape(3, 4)
        assert canonical_fingerprint(a) == canonical_fingerprint(a.copy())
        b = a.copy()
        b[1, 2] += 1e-9
        assert canonical_fingerprint(a) != canonical_fingerprint(b)
        assert (canonical_fingerprint(a)
                != canonical_fingerprint(a.astype(np.float32)))

    def test_value_objects_hash_by_attribute_state(self, tech):
        assert (canonical_fingerprint(tech)
                == canonical_fingerprint(copy.deepcopy(tech)))
        options = FlowOptions(sizing_iterations=3)
        edited = FlowOptions(sizing_iterations=4)
        assert canonical_fingerprint(options) != canonical_fingerprint(edited)

    def test_rejects_uncanonicalizable_inputs(self):
        with pytest.raises(UnhashableInputError):
            canonical_fingerprint({"fn": lambda: None})

    def test_byte_stable_across_processes_and_hash_seeds(self):
        """The property the whole store rests on: a fresh interpreter
        with a different PYTHONHASHSEED reproduces the exact digest."""
        payload = (
            "{'flow': 's2d', 'knobs': {'scale': 0.02, 'tags': {'a', 'b'},"
            " 'opts': (1, 2.5, True, None)}}"
        )
        script = (
            "from repro.cache import canonical_fingerprint, chain_key;"
            f"obj = eval({payload!r});"
            "print(canonical_fingerprint(obj));"
            "print(chain_key('s2d', obj))"
        )
        digests = []
        for seed in ("0", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(
                filter(None, ["src", env.get("PYTHONPATH")])
            )
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, check=True,
            )
            digests.append(proc.stdout.split())
        obj = eval(payload)
        assert digests[0] == digests[1]
        assert digests[0] == [canonical_fingerprint(obj),
                              chain_key("s2d", obj)]


class TestNetlistFingerprint:
    def test_identical_builds_agree(self, library):
        a = build_mini_netlist(library)
        b = build_mini_netlist(library)
        assert netlist_fingerprint(a) == netlist_fingerprint(b)

    @pytest.mark.parametrize("mutate", [
        lambda nl, lib: nl.add_instance("extra", lib.cell("INV_X2")),
        lambda nl, lib: nl.add_net("stray"),
        lambda nl, lib: setattr(nl.nets[2], "is_clock", True),
        lambda nl, lib: setattr(nl.instances[0], "fixed", True),
        lambda nl, lib: setattr(nl, "name", "renamed"),
    ], ids=["add-instance", "add-net", "clock-mark", "fix-cell", "rename"])
    def test_single_bit_mutations_move_the_fingerprint(self, library, mutate):
        # Fault-injection style (cf. tests/test_drc.py): seed exactly one
        # logical change and the content hash must move.
        base = netlist_fingerprint(build_mini_netlist(library))
        mutant = build_mini_netlist(library)
        mutate(mutant, library)
        assert netlist_fingerprint(mutant) != base

    def test_scale_changes_fingerprint(self, tiny_tile):
        from repro.netlist.openpiton import build_tile

        other = build_tile(small_cache_config(), scale=0.021)
        assert (netlist_fingerprint(other.netlist)
                != netlist_fingerprint(tiny_tile.netlist))


class TestStageKeys:
    UP = "0" * 64

    def test_chained_on_upstream(self):
        a = stage_key("global_place", self.UP, {"placer": "cg"})
        b = stage_key("global_place", "1" * 64, {"placer": "cg"})
        assert a != b

    def test_knob_edits_move_the_key(self):
        base = stage_key("sta", self.UP, {"sizing_iterations": 3})
        assert base != stage_key("sta", self.UP, {"sizing_iterations": 4})
        assert base == stage_key("sta", self.UP, {"sizing_iterations": 3})

    def test_stage_name_disambiguates(self):
        assert (stage_key("extract", self.UP, {})
                != stage_key("pseudo_extract", self.UP, {}))

    def test_chain_key_folds_flow_name(self):
        inputs = {"scale": 0.02}
        assert chain_key("2d", inputs) != chain_key("macro3d", inputs)


class TestStore:
    def test_round_trip(self, tmp_path):
        cache = StageCache(str(tmp_path))
        key = "ab" * 32
        state = {"tile": {"nets": 3}, "floorplan": [1.5, 2.5]}
        journal = [["counter", "cache_probe", 2.0]]
        cache.store(key, state, journal, stage="floorplan", flow="2d",
                    facts={"netlist": "deadbeef"}, wall_s=0.25)
        meta = cache.lookup(key)
        assert meta is not None
        assert meta["stage"] == "floorplan"
        assert meta["facts"] == {"netlist": "deadbeef"}
        assert meta["journal"] == journal
        assert cache.load_state(key) == state
        stats = cache.stats()
        assert stats.entries == 1
        assert stats.by_stage == {"floorplan": 1}
        assert stats.total_bytes > 0

    def test_lookup_miss_is_none(self, tmp_path):
        assert StageCache(str(tmp_path)).lookup("cd" * 32) is None

    def test_clear_empties_the_root(self, tmp_path):
        cache = StageCache(str(tmp_path))
        cache.store("ef" * 32, {"x": 1}, [], stage="sta")
        assert cache.clear() == 1
        assert StageCache(str(tmp_path)).lookup("ef" * 32) is None

    def test_torn_entry_raises_cache_error(self, tmp_path):
        cache = StageCache(str(tmp_path))
        key = "12" * 32
        cache.store(key, {"x": 1}, [], stage="sta")
        with open(cache.state_path(key), "wb") as handle:
            handle.write(b"\x80corrupt")
        with pytest.raises(CacheError):
            cache.load_state(key)

    def test_deep_object_graphs_pickle(self, tmp_path):
        # Regression: Instance->Net->Instance chains recurse with design
        # depth; the plain pickler blows the default recursion limit at
        # bench scales.  The store must swallow graphs far deeper than
        # sys.getrecursionlimit().
        node = None
        for i in range(30_000):
            node = {"next": node, "i": i}
        cache = StageCache(str(tmp_path))
        key = "34" * 32
        cache.store(key, {"deep": node}, [], stage="build_tile")
        loaded = cache.load_state(key)["deep"]
        assert loaded["i"] == 29_999
        assert loaded["next"]["next"]["i"] == 29_997

    def test_resolve_cache_dir_precedence(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert resolve_cache_dir(str(tmp_path / "arg")).endswith("arg")
        assert resolve_cache_dir(None).endswith("env")
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert resolve_cache_dir(None).endswith(os.path.join(".cache", "repro"))


def _three_stage_chain(flow_inputs, knobs):
    """One synthetic flow run: seed -> transform -> reduce."""
    chain = StageChain.begin("toy", **flow_inputs)

    def seed(st):
        count("toy_seeded", 1)
        st["values"] = list(range(10))
        return {"n": len(st["values"])}

    def transform(st):
        observe("toy_scale", float(knobs["scale"]))
        st["scaled"] = [v * knobs["scale"] for v in st["values"]]

    def reduce_(st):
        count("toy_reduced", 1)
        st["total"] = sum(st["scaled"])

    chain.run("seed", seed)
    chain.run("transform", transform, scale=knobs["scale"])
    chain.run("reduce", reduce_)
    return chain


class TestStageChain:
    INPUTS = {"config": "smallcache"}

    def test_null_chain_without_ambient_cache(self):
        assert active_cache() is None
        chain = _three_stage_chain(self.INPUTS, {"scale": 3})
        assert not chain.enabled
        assert chain.key == ""
        assert chain.state["total"] == 135
        assert [kind for _, kind in chain.stages] == ["computed"] * 3

    def test_cold_then_warm_then_edited(self, tmp_path):
        with caching(StageCache(str(tmp_path))):
            with recording() as rec:
                cold = _three_stage_chain(self.INPUTS, {"scale": 3})
            cold_trace = FlowTrace.from_recorder(rec)
            assert (cold.hits, cold.misses) == (0, 3)
            assert cold.state["total"] == 135

            with recording() as rec:
                warm = _three_stage_chain(self.INPUTS, {"scale": 3})
            warm_trace = FlowTrace.from_recorder(rec)
            assert (warm.hits, warm.misses) == (3, 0)
            assert [kind for _, kind in warm.stages] == ["hit"] * 3
            # One lazy unpickle of the deepest checkpoint reproduces the
            # cumulative state...
            assert warm.state["total"] == 135
            # ...and journal replay reproduces every cold metric.
            assert warm_trace.counters["toy_seeded"] == 1
            assert warm_trace.counters["toy_reduced"] == 1
            assert (warm_trace.histograms["toy_scale"].to_dict()
                    == cold_trace.histograms["toy_scale"].to_dict())
            assert warm_trace.counters["cache_hit"] == 3
            assert cold_trace.counters["cache_miss"] == 3
            assert cold_trace.counters["cache_store"] == 3

            # A knob edit keeps the upstream checkpoint and recomputes
            # only from the edited stage on.
            edited = _three_stage_chain(self.INPUTS, {"scale": 5})
            assert [kind for _, kind in edited.stages] == [
                "hit", "miss", "miss"
            ]
            assert edited.state["total"] == 225

    def test_run_level_inputs_partition_the_cache(self, tmp_path):
        with caching(StageCache(str(tmp_path))):
            _three_stage_chain(self.INPUTS, {"scale": 3})
            other = _three_stage_chain({"config": "largecache"}, {"scale": 3})
            assert (other.hits, other.misses) == (0, 3)

    def test_hit_spans_are_tagged(self, tmp_path):
        with caching(StageCache(str(tmp_path))):
            _three_stage_chain(self.INPUTS, {"scale": 3})
            with recording() as rec:
                _three_stage_chain(self.INPUTS, {"scale": 3})
        spans = FlowTrace.from_recorder(rec).spans
        assert [s.name for s in spans] == ["seed", "transform", "reduce"]
        assert all(s.attrs.get("cache") == "hit" for s in spans)


class TestFlowWarmRepeat:
    """The acceptance property on a real (tiny) flow: a warm repeat is
    a chain of hits and its QoR counters match the cold run's."""

    OPTIONS = FlowOptions(sizing_iterations=1)

    def _run(self):
        with recording() as rec:
            result = run_flow_2d(
                small_cache_config(), scale=0.01, options=self.OPTIONS
            )
        return result, FlowTrace.from_recorder(
            rec, flow=result.flow, design=result.design
        )

    def test_warm_2d_flow_is_all_hits_and_qor_identical(self, tmp_path):
        with caching(StageCache(str(tmp_path))):
            cold, cold_trace = self._run()
            warm, warm_trace = self._run()
        assert warm_trace.counters["cache_hit"] == 10
        assert "cache_miss" not in warm_trace.counters
        assert cold_trace.counters["cache_miss"] == 10
        assert warm.summary.as_row() == cold.summary.as_row()

        def qor_counters(trace):
            return {k: v for k, v in trace.counters.items()
                    if not k.startswith("cache_")}

        assert qor_counters(warm_trace) == qor_counters(cold_trace)
        assert warm_trace.gauges == cold_trace.gauges


class TestIndexReuse:
    def test_same_geometry_reuses_one_index(self, library):
        netlist = build_mini_netlist(library)
        ports = {
            "clk": Point(0.0, 5.0),
            "din": Point(0.0, 2.5),
            "dout": Point(20.0, 7.5),
        }
        with recording() as rec:
            first = shared_geometry(netlist, {}, ports)
            second = shared_geometry(netlist, {}, dict(ports))
        assert second is first
        trace = FlowTrace.from_recorder(rec)
        assert trace.counters["index_reuse"] == 1
        # A different geometry is a different index, not a stale reuse.
        moved = dict(ports, dout=Point(21.0, 7.5))
        assert shared_geometry(netlist, {}, moved) is not first


def _boom_flow(config, scale, options):
    raise RuntimeError("kaboom: fallback-path probe")


class TestSpawnFallback:
    """bench run --jobs on a spawn-only platform: loud serial fallback."""

    A = Scenario(name="boomA-smallcache-forktest", flow="boomfb",
                 config="smallcache", size="forktest", scale=0.01,
                 sizing_iterations=1)
    B = Scenario(name="boomB-smallcache-forktest", flow="boomfb",
                 config="smallcache", size="forktest", scale=0.01,
                 sizing_iterations=1)

    @pytest.fixture()
    def spawn_only(self, monkeypatch):
        monkeypatch.setattr(
            "repro.bench.runner.multiprocessing.get_all_start_methods",
            lambda: ["spawn"],
        )
        monkeypatch.setitem(FLOW_RUNNERS, "boomfb", _boom_flow)
        register_scenario(self.A)
        register_scenario(self.B)
        yield
        unregister_scenario(self.A.name)
        unregister_scenario(self.B.name)

    def test_fork_context_is_none_without_fork(self, spawn_only):
        assert fork_context() is None

    def test_parallel_run_warns_and_runs_serially(self, spawn_only, tmp_path):
        with pytest.warns(RuntimeWarning, match="serially"):
            results, schedule, failures = run_benchmarks(
                [self.A, self.B], str(tmp_path), svg=False, jobs=2
            )
        # Both scenarios executed (and failed on the probe flow) — the
        # fallback ran the full list, one at a time.
        assert sorted(f.scenario for f in failures) == [
            self.A.name, self.B.name
        ]
        assert not scenarios_overlapped(schedule)
        assert "fork" in FORK_FALLBACK_MESSAGE

    def test_fork_platform_does_not_warn(self, tmp_path, recwarn):
        if fork_context() is None:
            pytest.skip("platform genuinely lacks fork")
        # An empty serial run must never emit the fallback warning.
        results, _schedule, failures = run_benchmarks(
            [], str(tmp_path), svg=False, jobs=1
        )
        assert results == [] and failures == []
        assert not [w for w in recwarn.list
                    if "serially" in str(w.message)]
