"""Medium-tier end-to-end smoke tests (``pytest -m slow``).

The default test run deselects these (``addopts = -m "not slow"`` in
pyproject.toml); CI runs them in a dedicated job.  They execute full
flows at the medium tier — the scale the committed BENCH baselines are
recorded at — and hold the paper's central signoff claim there: the
Macro-3D design is directly valid in 3D (zero DRC violations), not just
at the small CI-smoke scale.
"""

import pytest

from repro.bench import get_scenario

pytestmark = pytest.mark.slow


class TestMediumFlowSmoke:
    @pytest.mark.parametrize(
        "name",
        ["macro3d-smallcache-medium", "macro3d-largecache-medium"],
    )
    def test_macro3d_medium_signs_off_clean(self, name):
        scenario = get_scenario(name)
        result = scenario.run()
        assert result.drc is not None
        assert result.drc.total == 0, result.drc
        assert result.summary.drc_total == 0
        assert result.summary.fclk_mhz > 0.0

    def test_2d_reference_medium_completes(self):
        result = get_scenario("2d-largecache-medium").run()
        assert result.summary.fclk_mhz > 0.0
        assert result.drc is not None and result.drc.total == 0
